// Package apiv1 is the versioned wire contract of the macroflowd
// compile service (cmd/macroflowd): request/response structs with
// explicit JSON tags, a typed error envelope, and a small Go client.
//
// The contract mirrors the library's structured options surface —
// StitchParams maps onto macroflow.StitchOptions and ImplementParams
// onto macroflow.ImplementOptions, field for field. The flat stitch
// fields (iterations/chains/gdIterations) predate the per-backend
// sub-objects and map onto the library's deprecated aliases; the
// anneal/analytic/evo/portfolio sub-objects map onto the sub-structs
// and win on conflict via the library's overlay. Compatibility policy:
// within v1, fields are only ever added (always with omitempty
// semantics on responses, as the sub-objects and the result's
// portfolio report were); renames, removals or meaning changes require
// a new version prefix.
// Servers decode requests strictly (unknown fields are rejected, so a
// typo'd option fails loudly instead of being silently ignored);
// clients decode responses leniently (unknown fields are ignored, so
// old clients keep working against newer v1 servers).
package apiv1

import (
	"encoding/json"
	"fmt"
	"io"
)

// Version is the contract version this package implements; PathPrefix
// is the URL prefix every endpoint lives under.
const (
	Version    = "v1"
	PathPrefix = "/v1"
)

// Job states reported by JobStatus.State.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// Error codes used in the typed error envelope.
const (
	ErrBadRequest     = "bad_request"     // malformed JSON, unknown fields
	ErrInvalidOptions = "invalid_options" // options the flow's Validate rejects
	ErrQueueFull      = "queue_full"      // admission control: bounded queue at capacity
	ErrDraining       = "draining"        // server is draining, not admitting
	ErrNotFound       = "not_found"       // unknown job ID or route
	ErrNotFinished    = "not_finished"    // result requested before the job finished
	ErrNotCancelable  = "not_cancelable"  // cancel on a running or finished job
	ErrUnsupported    = "unsupported"     // e.g. estimator mode with no estimator loaded
	ErrInternal       = "internal"        // compile failure or server bug
)

// Error is the typed error payload; it travels inside ErrorEnvelope
// and doubles as the Go error the client returns.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e == nil {
		return "<nil>"
	}
	return fmt.Sprintf("macroflowd: %s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the body of every non-2xx response.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// CompileRequest submits one compile job.
type CompileRequest struct {
	// Device is the target fabric: "xc7z020" (the default) or
	// "xc7z045".
	Device string `json:"device,omitempty"`
	// Design is the block design to compile: either the builtin
	// cnvW1A1 case study or a custom block/instance/net list.
	Design DesignSpec `json:"design"`
	// Mode selects the correction-factor policy (minsweep default).
	Mode ModeSpec `json:"mode,omitempty"`
	// Search overrides the CF search window (flow defaults otherwise;
	// the builtin cnvW1A1 design defaults to the paper's 0.5/0.02/3.0).
	Search *SearchWindow `json:"search,omitempty"`
	// Stitch mirrors macroflow.StitchOptions.
	Stitch StitchParams `json:"stitch,omitempty"`
	// Implement mirrors macroflow.ImplementOptions.
	Implement ImplementParams `json:"implement,omitempty"`
	// Partition mirrors macroflow.PartitionOptions (multi-region
	// compilation; absent = single-device). Added within v1.
	Partition *PartitionParams `json:"partition,omitempty"`
	// SkipStitch implements the blocks only.
	SkipStitch bool `json:"skipStitch,omitempty"`
	// Priority orders admission: higher-priority jobs start first;
	// ties run in submission order. 0 is the default priority.
	Priority int `json:"priority,omitempty"`
}

// DesignSpec names a design: exactly one of Builtin or Blocks must be
// set.
type DesignSpec struct {
	// Builtin selects a built-in workload; "cnvW1A1" is the paper's
	// partitioned CNN (74 unique block types, 175 instances).
	Builtin string `json:"builtin,omitempty"`
	// Blocks are the unique block types of a custom design.
	Blocks []BlockSpec `json:"blocks,omitempty"`
	// Instances replicate block types; Block indexes into Blocks.
	Instances []InstanceSpec `json:"instances,omitempty"`
	// Nets connect instances; From/To index into Instances.
	Nets []NetSpec `json:"nets,omitempty"`
}

// BlockSpec is one unique block type, assembled from the component
// library exactly like macroflow.Spec's builder methods.
type BlockSpec struct {
	Name       string          `json:"name"`
	Components []ComponentSpec `json:"components"`
}

// Component kinds accepted in ComponentSpec.Kind, mirroring the Spec
// builder methods one to one.
const (
	CompShiftRegs         = "shiftregs"  // Spec.ShiftRegs(count, length, controlSets, fanin)
	CompSRLs              = "srls"       // Spec.SRLs(count, length, controlSets)
	CompMemory            = "memory"     // Spec.Memory(width, depth)
	CompDistributedMemory = "distmem"    // Spec.DistributedMemory(width, depth)
	CompSumOfSquares      = "sumsquares" // Spec.SumOfSquares(width, terms)
	CompLFSRs             = "lfsrs"      // Spec.LFSRs(count, width, useCarry, useSRL)
	CompLogic             = "logic"      // Spec.Logic(luts, fanin, depth)
)

// ComponentSpec is one component of a block; Kind selects which of the
// parameter fields apply (see the Comp* constants).
type ComponentSpec struct {
	Kind        string `json:"kind"`
	Count       int    `json:"count,omitempty"`
	Length      int    `json:"length,omitempty"`
	ControlSets int    `json:"controlSets,omitempty"`
	Fanin       int    `json:"fanin,omitempty"`
	Width       int    `json:"width,omitempty"`
	Depth       int    `json:"depth,omitempty"`
	Terms       int    `json:"terms,omitempty"`
	LUTs        int    `json:"luts,omitempty"`
	UseCarry    bool   `json:"useCarry,omitempty"`
	UseSRL      bool   `json:"useSRL,omitempty"`
}

// InstanceSpec is one occurrence of a block type.
type InstanceSpec struct {
	Name  string `json:"name"`
	Block int    `json:"block"`
}

// NetSpec is a width-bit stream between two instances.
type NetSpec struct {
	From  int `json:"from"`
	To    int `json:"to"`
	Width int `json:"width,omitempty"`
}

// ModeSpec selects the correction-factor policy.
type ModeSpec struct {
	// Kind is "minsweep" (default), "constant" or "estimator" (needs
	// an estimator loaded into the server).
	Kind string `json:"kind,omitempty"`
	// CF is the fixed correction factor for Kind "constant".
	CF float64 `json:"cf,omitempty"`
}

// SearchWindow overrides the minimal-CF search window.
type SearchWindow struct {
	Start float64 `json:"start"`
	Step  float64 `json:"step"`
	Max   float64 `json:"max"`
}

// StitchParams mirrors macroflow.StitchOptions (the structured surface;
// recorder, progress callback and check level travel as wire-friendly
// spellings). The per-backend sub-objects (anneal/analytic/evo/
// portfolio) mirror the library's sub-structs and were added within v1;
// the flat iterations/chains/gdIterations fields predate them and map
// onto the library's deprecated aliases, so old clients keep working —
// conflicts resolve through the library's overlay (the sub-object
// wins, with a one-shot warning on the server).
type StitchParams struct {
	Seed         int64            `json:"seed,omitempty"`
	Iterations   int              `json:"iterations,omitempty"`
	Chains       int              `json:"chains,omitempty"`
	AdaptiveStop bool             `json:"adaptiveStop,omitempty"`
	TraceEvery   int              `json:"traceEvery,omitempty"`
	Backend      string           `json:"backend,omitempty"`      // anneal (default), analytic, hybrid, evo, portfolio
	GDIterations int              `json:"gdIterations,omitempty"` // analytic/hybrid gradient-descent budget
	Check        string           `json:"check,omitempty"`        // off (default), sampled, full
	Anneal       *AnnealParams    `json:"anneal,omitempty"`
	Analytic     *AnalyticParams  `json:"analytic,omitempty"`
	Evo          *EvoParams       `json:"evo,omitempty"`
	Portfolio    *PortfolioParams `json:"portfolio,omitempty"`
}

// AnnealParams mirrors macroflow.AnnealOptions.
type AnnealParams struct {
	Chains     int     `json:"chains,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	TempLadder float64 `json:"tempLadder,omitempty"`
}

// AnalyticParams mirrors macroflow.AnalyticOptions.
type AnalyticParams struct {
	GDIterations int `json:"gdIterations,omitempty"`
}

// EvoParams mirrors macroflow.EvoOptions.
type EvoParams struct {
	Mu          int `json:"mu,omitempty"`
	Lambda      int `json:"lambda,omitempty"`
	Generations int `json:"generations,omitempty"`
}

// PortfolioParams mirrors macroflow.PortfolioOptions.
type PortfolioParams struct {
	Backends  []string `json:"backends,omitempty"`
	Threshold float64  `json:"threshold,omitempty"`
}

// PartitionParams mirrors macroflow.PartitionOptions.
type PartitionParams struct {
	Shards      int     `json:"shards"`
	Backend     string  `json:"backend,omitempty"` // greedy (default), evo
	CutPenalty  float64 `json:"cutPenalty,omitempty"`
	Refinements int     `json:"refinements,omitempty"`
}

// ImplementParams mirrors macroflow.ImplementOptions.
type ImplementParams struct {
	Workers      int    `json:"workers,omitempty"`
	Strategy     string `json:"strategy,omitempty"` // default, linear, bisect
	ProbeWorkers int    `json:"probeWorkers,omitempty"`
	Check        string `json:"check,omitempty"` // off (default), sampled, full
}

// JobStatus is one job's public state.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Priority int    `json:"priority,omitempty"`
	// QueuePos is the number of jobs ahead in the queue (0 when not
	// queued).
	QueuePos int `json:"queuePos,omitempty"`
	// SubmittedMs/StartedMs/FinishedMs are Unix milliseconds (0 when
	// the stage has not happened yet).
	SubmittedMs int64 `json:"submittedMs,omitempty"`
	StartedMs   int64 `json:"startedMs,omitempty"`
	FinishedMs  int64 `json:"finishedMs,omitempty"`
	// Error holds the failure for state "failed".
	Error *Error `json:"error,omitempty"`
}

// CompileResult is the wire form of a finished compile — the common
// shape of macroflow.CompileResult and macroflow.CNVResult.
type CompileResult struct {
	Blocks []BlockResult `json:"blocks"`
	// Instances maps Blocks[i] to its instance count (builtin designs
	// and custom designs alike).
	Instances []int `json:"instances,omitempty"`
	// ToolRuns sums the place-and-route attempts of this job (cache
	// hits contribute zero).
	ToolRuns int `json:"toolRuns"`
	// FirstRunRate is the fraction of estimated blocks feasible on the
	// first attempt (estimator mode on the builtin design only).
	FirstRunRate float64    `json:"firstRunRate,omitempty"`
	CacheHits    int        `json:"cacheHits"`
	Cache        CacheStats `json:"cache"`
	// Stitch is nil for skipStitch jobs. For partitioned jobs it is the
	// aggregate over all shards.
	Stitch *StitchSummary `json:"stitch,omitempty"`
	// Partition is the per-member breakdown of a partitioned job — nil
	// unless the request set partition.shards. Added within v1.
	Partition *PartitionSummary `json:"partition,omitempty"`
	// Verify is nil unless a check level was requested.
	Verify *VerifySummary `json:"verify,omitempty"`
}

// PartitionSummary mirrors macroflow.PartitionReport.
type PartitionSummary struct {
	Backend    string          `json:"backend"`
	Members    []MemberSummary `json:"members"`
	CutNets    int             `json:"cutNets"`
	CutWeight  float64         `json:"cutWeight"`
	CutPenalty float64         `json:"cutPenalty"`
	CutCost    float64         `json:"cutCost"`
	TotalCost  float64         `json:"totalCost"`
}

// MemberSummary mirrors macroflow.MemberReport.
type MemberSummary struct {
	Name        string         `json:"name"`
	Instances   int            `json:"instances"`
	UsedSlices  int            `json:"usedSlices"`
	CapSlices   int            `json:"capSlices"`
	Utilization float64        `json:"utilization"`
	Stitch      *StitchSummary `json:"stitch,omitempty"`
}

// BlockResult mirrors macroflow.ModuleResult.
type BlockResult struct {
	Name          string  `json:"name"`
	CF            float64 `json:"cf"`
	ToolRuns      int     `json:"toolRuns"`
	EstSlices     int     `json:"estSlices"`
	UsedSlices    int     `json:"usedSlices"`
	PBlock        string  `json:"pblock"`
	LongestPathNS float64 `json:"longestPathNs"`
	Irregularity  float64 `json:"irregularity"`
	MaxFanout     int     `json:"maxFanout"`
	ControlSets   int     `json:"controlSets"`
	CarryChains   int     `json:"carryChains"`
}

// CacheStats mirrors macroflow.CacheStats.
type CacheStats struct {
	MemHits          int `json:"memHits"`
	DiskHits         int `json:"diskHits"`
	SingleflightHits int `json:"singleflightHits"`
	Misses           int `json:"misses"`
	Stores           int `json:"stores"`
	Negatives        int `json:"negatives"`
}

// StitchSummary mirrors macroflow.StitchReport (per-chain telemetry
// and the cost trace included; the ASCII map is omitted unless small).
type StitchSummary struct {
	Backend         string        `json:"backend"`
	GDIters         int           `json:"gdIters,omitempty"`
	Placed          int           `json:"placed"`
	Unplaced        int           `json:"unplaced"`
	FinalCost       float64       `json:"finalCost"`
	ConvergenceIter int           `json:"convergenceIter"`
	IllegalMoves    int           `json:"illegalMoves"`
	Iterations      int           `json:"iterations"`
	Exchanges       int           `json:"exchanges,omitempty"`
	FreeTiles       int           `json:"freeTiles"`
	LargestFreeRect int           `json:"largestFreeRect"`
	TraceEvery      int           `json:"traceEvery"`
	Map             string        `json:"map,omitempty"`
	Trace           []CostPoint   `json:"trace,omitempty"`
	Chains          []ChainReport `json:"chains,omitempty"`
	// Portfolio carries the cross-backend race telemetry of portfolio
	// runs (absent otherwise). Added within v1.
	Portfolio *PortfolioReport `json:"portfolio,omitempty"`
}

// PortfolioReport mirrors macroflow.PortfolioReport.
type PortfolioReport struct {
	Winner    int                `json:"winner"`
	Threshold float64            `json:"threshold,omitempty"`
	Entrants  []PortfolioEntrant `json:"entrants"`
}

// PortfolioEntrant mirrors macroflow.PortfolioEntrant: a ChainReport
// (the entrant as a pseudo-chain) plus the racing outcome.
type PortfolioEntrant struct {
	ChainReport
	Backend       string `json:"backend"`
	Winner        bool   `json:"winner,omitempty"`
	ThresholdIter int    `json:"thresholdIter"`
	Iterations    int    `json:"iterations"`
	Unplaced      int    `json:"unplaced,omitempty"`
}

// CostPoint mirrors macroflow.CostPoint.
type CostPoint struct {
	Iter int     `json:"iter"`
	Cost float64 `json:"cost"`
}

// ChainReport mirrors macroflow.ChainReport.
type ChainReport struct {
	Chain        int         `json:"chain"`
	InitTemp     float64     `json:"initTemp"`
	Moves        int         `json:"moves"`
	Accepts      int         `json:"accepts"`
	IllegalMoves int         `json:"illegalMoves"`
	Exchanges    int         `json:"exchanges,omitempty"`
	FinalCost    float64     `json:"finalCost"`
	Trace        []CostPoint `json:"trace,omitempty"`
}

// VerifySummary is the oracle cross-check outcome.
type VerifySummary struct {
	Checks     int         `json:"checks"`
	Violations []Violation `json:"violations,omitempty"`
}

// Violation mirrors one broken contract found by the oracle.
type Violation struct {
	Checker string `json:"checker"`
	Subject string `json:"subject"`
	Detail  string `json:"detail"`
}

// Event is one entry of a job's streaming progress feed (JSONL over
// GET /v1/jobs/{id}/events). Seq is dense per job, so a reconnecting
// client resumes with ?from=<lastSeq+1>.
type Event struct {
	Seq int `json:"seq"`
	// Type is "state" (job state change), "span" (one finished obs
	// span, the span→event bridge) or "progress" (a stitcher progress
	// sample).
	Type string `json:"type"`
	// Name is the state, span name, or "stitch" for progress samples.
	Name string `json:"name"`
	// AtMs is the event's wall-clock Unix milliseconds.
	AtMs int64 `json:"atMs,omitempty"`
	// DurUs is the span's duration in microseconds (spans only).
	DurUs int64 `json:"durUs,omitempty"`
	// Chain/Iter/Cost carry stitcher progress samples.
	Chain int     `json:"chain,omitempty"`
	Iter  int     `json:"iter,omitempty"`
	Cost  float64 `json:"cost,omitempty"`
	// Attrs carries span attributes (spans only).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// ServerStats is the GET /v1/stats payload.
type ServerStats struct {
	Version  string `json:"version"`
	Device   string `json:"device"`
	Workers  int    `json:"workers"`
	Draining bool   `json:"draining"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	QueueLen  int   `json:"queueLen"`
	Running   int   `json:"running"`

	// Cache is the shared block cache's process-lifetime counters;
	// Persistent* are the disk layer's cross-process lifetime counters.
	Cache               CacheStats `json:"cache"`
	PersistentHits      uint64     `json:"persistentHits,omitempty"`
	PersistentMisses    uint64     `json:"persistentMisses,omitempty"`
	PersistentStores    uint64     `json:"persistentStores,omitempty"`
	PersistentNegatives uint64     `json:"persistentNegatives,omitempty"`

	// Audit summarizes the continuous background oracle audits.
	Audit AuditStats `json:"audit"`

	// Telemetry is the service-telemetry snapshot (queue depth, worker
	// utilization, latency quantiles, flight recorder state).
	Telemetry *TelemetryStats `json:"telemetry,omitempty"`
}

// LatencySummary condenses one latency histogram: sample count, the
// interpolated p50/p95/p99 quantiles and the observed maximum, all in
// milliseconds.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// TelemetryStats is the service-telemetry section of GET /v1/stats —
// the same data GET /metrics exposes in Prometheus text, condensed for
// JSON consumers. Added within v1 (omitempty on the parent), so old
// clients are unaffected.
type TelemetryStats struct {
	// UptimeMs is the server's age in milliseconds.
	UptimeMs int64 `json:"uptimeMs"`
	// QueueDepth / QueueDepthPeak are the current and high-water queued
	// job counts.
	QueueDepth     int `json:"queueDepth"`
	QueueDepthPeak int `json:"queueDepthPeak"`
	// WorkersBusy is the number of workers currently running a job.
	WorkersBusy int `json:"workersBusy"`
	// SLOMs echoes the configured per-job latency objective (0 = none);
	// SLOBreaches counts jobs that missed it or finished with oracle
	// violations.
	SLOMs       int64 `json:"sloMs,omitempty"`
	SLOBreaches int64 `json:"sloBreaches"`
	// FlightSpans is the number of spans currently buffered in the
	// flight recorder ring; FlightDumps counts anomaly trace dumps
	// written so far.
	FlightSpans int   `json:"flightSpans"`
	FlightDumps int64 `json:"flightDumps"`
	// JobLatency summarizes submit→finish latency across finished jobs;
	// Stages breaks compile time down by flow stage (synth, place,
	// mincf, stitch, oracle).
	JobLatency LatencySummary            `json:"jobLatency"`
	Stages     map[string]LatencySummary `json:"stages,omitempty"`
}

// AuditStats summarizes the daemon's background -check sampled audits.
type AuditStats struct {
	Runs       int64 `json:"runs"`
	Checks     int64 `json:"checks"`
	Violations int64 `json:"violations"`
	LastMs     int64 `json:"lastMs,omitempty"`
}

// Health is the GET /v1/healthz payload.
type Health struct {
	Status  string `json:"status"` // "ok" or "draining"
	Version string `json:"version"`
}

// DecodeRequest strictly decodes a CompileRequest: unknown fields are
// rejected (a typo'd option must fail loudly, not silently compile
// with defaults), as is trailing garbage after the JSON value.
func DecodeRequest(r io.Reader) (*CompileRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req CompileRequest
	if err := dec.Decode(&req); err != nil {
		return nil, &Error{Code: ErrBadRequest, Message: err.Error()}
	}
	// A second Decode must hit EOF: two JSON values in one body is a
	// malformed request, not a second job.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &Error{Code: ErrBadRequest, Message: "trailing data after request body"}
	}
	return &req, nil
}
