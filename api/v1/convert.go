package apiv1

import (
	"fmt"

	"macroflow"
)

// BuiltinCNVW1A1 is the one builtin design spelling DesignSpec.Builtin
// accepts.
const BuiltinCNVW1A1 = "cnvW1A1"

// Validate checks the request's wire-level invariants (exactly one
// design source, known mode/component spellings, index ranges). Option
// semantics — backend spellings, negative budgets — are validated by
// the flow's own StitchOptions.Validate / ImplementOptions.Validate
// after conversion, so HTTP and CLI reject them with identical
// messages.
func (r *CompileRequest) Validate() error {
	switch r.Device {
	case "", "xc7z020", "xc7z045":
	default:
		return &Error{Code: ErrInvalidOptions,
			Message: fmt.Sprintf("unknown device %q (xc7z020, xc7z045)", r.Device)}
	}
	if err := r.Design.validate(); err != nil {
		return err
	}
	switch r.Mode.Kind {
	case "", "minsweep", "constant", "estimator":
	default:
		return &Error{Code: ErrInvalidOptions,
			Message: fmt.Sprintf("unknown cf mode %q (minsweep, constant, estimator)", r.Mode.Kind)}
	}
	if r.Mode.Kind == "constant" && r.Mode.CF <= 0 {
		return &Error{Code: ErrInvalidOptions,
			Message: fmt.Sprintf("constant mode needs cf > 0 (got %g)", r.Mode.CF)}
	}
	if s := r.Search; s != nil && (s.Start <= 0 || s.Step <= 0 || s.Max < s.Start) {
		return &Error{Code: ErrInvalidOptions,
			Message: fmt.Sprintf("bad search window start=%g step=%g max=%g", s.Start, s.Step, s.Max)}
	}
	return nil
}

func (d *DesignSpec) validate() error {
	if d.Builtin != "" {
		if d.Builtin != BuiltinCNVW1A1 {
			return &Error{Code: ErrInvalidOptions,
				Message: fmt.Sprintf("unknown builtin design %q (only %q)", d.Builtin, BuiltinCNVW1A1)}
		}
		if len(d.Blocks) > 0 || len(d.Instances) > 0 || len(d.Nets) > 0 {
			return &Error{Code: ErrInvalidOptions,
				Message: "a builtin design cannot also carry blocks/instances/nets"}
		}
		return nil
	}
	if len(d.Blocks) == 0 {
		return &Error{Code: ErrInvalidOptions, Message: "design needs a builtin name or at least one block"}
	}
	if len(d.Instances) == 0 {
		return &Error{Code: ErrInvalidOptions, Message: "design needs at least one instance"}
	}
	for i, b := range d.Blocks {
		if b.Name == "" {
			return &Error{Code: ErrInvalidOptions, Message: fmt.Sprintf("block %d has no name", i)}
		}
		if len(b.Components) == 0 {
			return &Error{Code: ErrInvalidOptions, Message: fmt.Sprintf("block %q has no components", b.Name)}
		}
		for _, c := range b.Components {
			switch c.Kind {
			case CompShiftRegs, CompSRLs, CompMemory, CompDistributedMemory,
				CompSumOfSquares, CompLFSRs, CompLogic:
			default:
				return &Error{Code: ErrInvalidOptions,
					Message: fmt.Sprintf("block %q: unknown component kind %q", b.Name, c.Kind)}
			}
		}
	}
	for i, in := range d.Instances {
		if in.Block < 0 || in.Block >= len(d.Blocks) {
			return &Error{Code: ErrInvalidOptions,
				Message: fmt.Sprintf("instance %d references block %d of %d", i, in.Block, len(d.Blocks))}
		}
	}
	for i, n := range d.Nets {
		if n.From < 0 || n.From >= len(d.Instances) || n.To < 0 || n.To >= len(d.Instances) {
			return &Error{Code: ErrInvalidOptions,
				Message: fmt.Sprintf("net %d endpoints (%d, %d) out of range", i, n.From, n.To)}
		}
	}
	return nil
}

// BuildDesign converts a custom DesignSpec into a macroflow.Design.
// Callers handle Builtin themselves (the builtin designs run through
// their dedicated flow entry points).
func (d *DesignSpec) BuildDesign() (*macroflow.Design, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	if d.Builtin != "" {
		return nil, &Error{Code: ErrInvalidOptions, Message: "builtin designs are not built client-side"}
	}
	out := macroflow.NewDesign()
	for _, b := range d.Blocks {
		spec := macroflow.NewSpec(b.Name)
		for _, c := range b.Components {
			switch c.Kind {
			case CompShiftRegs:
				spec.ShiftRegs(c.Count, c.Length, c.ControlSets, c.Fanin)
			case CompSRLs:
				spec.SRLs(c.Count, c.Length, c.ControlSets)
			case CompMemory:
				spec.Memory(c.Width, c.Depth)
			case CompDistributedMemory:
				spec.DistributedMemory(c.Width, c.Depth)
			case CompSumOfSquares:
				spec.SumOfSquares(c.Width, c.Terms)
			case CompLFSRs:
				spec.LFSRs(c.Count, c.Width, c.UseCarry, c.UseSRL)
			case CompLogic:
				spec.Logic(c.LUTs, c.Fanin, c.Depth)
			}
		}
		out.AddBlockType(spec)
	}
	for _, in := range d.Instances {
		if _, err := out.AddInstance(in.Block, in.Name); err != nil {
			return nil, &Error{Code: ErrInvalidOptions, Message: err.Error()}
		}
	}
	for _, n := range d.Nets {
		if err := out.Connect(n.From, n.To, n.Width); err != nil {
			return nil, &Error{Code: ErrInvalidOptions, Message: err.Error()}
		}
	}
	return out, nil
}

// InstanceCounts tallies how many instances use each block type of a
// custom design (nil for builtin designs — their flow reports its own).
func (d *DesignSpec) InstanceCounts() []int {
	if d.Builtin != "" || len(d.Blocks) == 0 {
		return nil
	}
	counts := make([]int, len(d.Blocks))
	for _, in := range d.Instances {
		if in.Block >= 0 && in.Block < len(counts) {
			counts[in.Block]++
		}
	}
	return counts
}

// Options converts the wire params into the structured
// macroflow.StitchOptions (never the deprecated flat aliases). The
// caller attaches recorder and progress callback; semantic validation
// is the flow's StitchOptions.Validate.
func (p StitchParams) Options() (macroflow.StitchOptions, error) {
	check, err := macroflow.ParseCheckLevel(p.Check)
	if err != nil {
		return macroflow.StitchOptions{}, &Error{Code: ErrInvalidOptions, Message: err.Error()}
	}
	o := macroflow.StitchOptions{
		Seed:         p.Seed,
		Iterations:   p.Iterations,
		Chains:       p.Chains,
		AdaptiveStop: p.AdaptiveStop,
		TraceEvery:   p.TraceEvery,
		Backend:      p.Backend,
		GDIterations: p.GDIterations,
		Check:        check,
	}
	if p.Anneal != nil {
		o.Anneal = macroflow.AnnealOptions{
			Chains:     p.Anneal.Chains,
			Iterations: p.Anneal.Iterations,
			TempLadder: p.Anneal.TempLadder,
		}
	}
	if p.Analytic != nil {
		o.Analytic = macroflow.AnalyticOptions{GDIterations: p.Analytic.GDIterations}
	}
	if p.Evo != nil {
		o.Evo = macroflow.EvoOptions{
			Mu:          p.Evo.Mu,
			Lambda:      p.Evo.Lambda,
			Generations: p.Evo.Generations,
		}
	}
	if p.Portfolio != nil {
		o.Portfolio = macroflow.PortfolioOptions{
			Backends:  append([]string(nil), p.Portfolio.Backends...),
			Threshold: p.Portfolio.Threshold,
		}
	}
	return o, nil
}

// Options converts the wire params into macroflow.PartitionOptions.
// A nil receiver (partition absent from the request) converts to the
// zero value, which disables partitioning. Semantic validation is the
// flow's PartitionOptions.Validate.
func (p *PartitionParams) Options() macroflow.PartitionOptions {
	if p == nil {
		return macroflow.PartitionOptions{}
	}
	return macroflow.PartitionOptions{
		Shards:      p.Shards,
		Backend:     p.Backend,
		CutPenalty:  p.CutPenalty,
		Refinements: p.Refinements,
	}
}

// Options converts the wire params into the structured
// macroflow.ImplementOptions (never the deprecated flat aliases). The
// caller attaches the shared cache and recorder.
func (p ImplementParams) Options() (macroflow.ImplementOptions, error) {
	check, err := macroflow.ParseCheckLevel(p.Check)
	if err != nil {
		return macroflow.ImplementOptions{}, &Error{Code: ErrInvalidOptions, Message: err.Error()}
	}
	var strategy macroflow.SearchChoice
	switch p.Strategy {
	case "", "default":
		strategy = macroflow.SearchFlowDefault
	case "linear":
		strategy = macroflow.SearchForceLinear
	case "bisect":
		strategy = macroflow.SearchForceBisect
	default:
		return macroflow.ImplementOptions{}, &Error{Code: ErrInvalidOptions,
			Message: fmt.Sprintf("unknown search strategy %q (default, linear, bisect)", p.Strategy)}
	}
	return macroflow.ImplementOptions{
		Workers:      p.Workers,
		Strategy:     strategy,
		ProbeWorkers: p.ProbeWorkers,
		Check:        check,
	}, nil
}

// ResultFromCompile maps a macroflow.CompileResult onto the wire form.
func ResultFromCompile(res *macroflow.CompileResult, skipStitch bool) *CompileResult {
	out := &CompileResult{
		Blocks:    blockResults(res.Blocks),
		ToolRuns:  res.ToolRuns,
		CacheHits: res.CacheHits,
		Cache:     cacheStats(res.Cache),
		Verify:    verifySummary(res.Verify),
	}
	if !skipStitch {
		out.Stitch = stitchSummary(&res.Stitch)
	}
	out.Partition = partitionSummary(res.Partition)
	return out
}

// ResultFromCNV maps a macroflow.CNVResult onto the wire form.
func ResultFromCNV(res *macroflow.CNVResult, skipStitch bool) *CompileResult {
	out := &CompileResult{
		Blocks:       blockResults(res.Blocks),
		Instances:    append([]int(nil), res.Instances...),
		ToolRuns:     res.TotalToolRuns,
		FirstRunRate: res.FirstRunRate,
		CacheHits:    res.CacheHits,
		Cache:        cacheStats(res.Cache),
		Verify:       verifySummary(res.Verify),
	}
	if !skipStitch {
		out.Stitch = stitchSummary(&res.Stitch)
	}
	out.Partition = partitionSummary(res.Partition)
	return out
}

func partitionSummary(pr *macroflow.PartitionReport) *PartitionSummary {
	if pr == nil {
		return nil
	}
	out := &PartitionSummary{
		Backend:    pr.Backend,
		CutNets:    pr.CutNets,
		CutWeight:  pr.CutWeight,
		CutPenalty: pr.CutPenalty,
		CutCost:    pr.CutCost,
		TotalCost:  pr.TotalCost,
	}
	for i := range pr.Members {
		m := &pr.Members[i]
		out.Members = append(out.Members, MemberSummary{
			Name:        m.Name,
			Instances:   m.Instances,
			UsedSlices:  m.UsedSlices,
			CapSlices:   m.CapSlices,
			Utilization: m.Utilization,
			Stitch:      stitchSummary(&m.Stitch),
		})
	}
	return out
}

func blockResults(blocks []macroflow.ModuleResult) []BlockResult {
	out := make([]BlockResult, len(blocks))
	for i, b := range blocks {
		out[i] = BlockResult{
			Name:          b.Name,
			CF:            b.CF,
			ToolRuns:      b.ToolRuns,
			EstSlices:     b.EstSlices,
			UsedSlices:    b.UsedSlices,
			PBlock:        b.PBlock,
			LongestPathNS: b.LongestPathNS,
			Irregularity:  b.Irregularity,
			MaxFanout:     b.MaxFanout,
			ControlSets:   b.ControlSets,
			CarryChains:   b.CarryChains,
		}
	}
	return out
}

func cacheStats(s macroflow.CacheStats) CacheStats {
	return CacheStats{
		MemHits:          s.MemHits,
		DiskHits:         s.DiskHits,
		SingleflightHits: s.SingleflightHits,
		Misses:           s.Misses,
		Stores:           s.Stores,
		Negatives:        s.Negatives,
	}
}

func stitchSummary(r *macroflow.StitchReport) *StitchSummary {
	out := &StitchSummary{
		Backend:         r.Backend,
		GDIters:         r.GDIters,
		Placed:          r.Placed,
		Unplaced:        r.Unplaced,
		FinalCost:       r.FinalCost,
		ConvergenceIter: r.ConvergenceIter,
		IllegalMoves:    r.IllegalMoves,
		Iterations:      r.Iterations,
		Exchanges:       r.Exchanges,
		FreeTiles:       r.FreeTiles,
		LargestFreeRect: r.LargestFreeRect,
		TraceEvery:      r.TraceEvery,
		Map:             r.Map,
		Trace:           costPoints(r.Trace),
	}
	for _, ch := range r.Chains {
		out.Chains = append(out.Chains, chainReport(ch))
	}
	if r.Portfolio != nil {
		wp := &PortfolioReport{
			Winner:    r.Portfolio.Winner,
			Threshold: r.Portfolio.Threshold,
		}
		for _, e := range r.Portfolio.Entrants {
			wp.Entrants = append(wp.Entrants, PortfolioEntrant{
				ChainReport:   chainReport(e.ChainReport),
				Backend:       e.Backend,
				Winner:        e.Winner,
				ThresholdIter: e.ThresholdIter,
				Iterations:    e.Iterations,
				Unplaced:      e.Unplaced,
			})
		}
		out.Portfolio = wp
	}
	return out
}

func chainReport(ch macroflow.ChainReport) ChainReport {
	return ChainReport{
		Chain:        ch.Chain,
		InitTemp:     ch.InitTemp,
		Moves:        ch.Moves,
		Accepts:      ch.Accepts,
		IllegalMoves: ch.IllegalMoves,
		Exchanges:    ch.Exchanges,
		FinalCost:    ch.FinalCost,
		Trace:        costPoints(ch.Trace),
	}
}

func costPoints(trace []macroflow.CostPoint) []CostPoint {
	out := make([]CostPoint, len(trace))
	for i, p := range trace {
		out[i] = CostPoint{Iter: p.Iter, Cost: p.Cost}
	}
	return out
}

func verifySummary(vr *macroflow.VerifyReport) *VerifySummary {
	if vr == nil {
		return nil
	}
	out := &VerifySummary{Checks: vr.Checks}
	for _, v := range vr.Violations {
		out.Violations = append(out.Violations, Violation{
			Checker: v.Checker, Subject: v.Subject, Detail: v.Detail,
		})
	}
	return out
}
