package apiv1

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"macroflow"
)

func fullRequest() *CompileRequest {
	return &CompileRequest{
		Device: "xc7z045",
		Design: DesignSpec{
			Blocks: []BlockSpec{
				{Name: "b0", Components: []ComponentSpec{
					{Kind: CompShiftRegs, Count: 4, Length: 8, ControlSets: 2, Fanin: 4},
					{Kind: CompLogic, LUTs: 64, Fanin: 4, Depth: 2},
				}},
				{Name: "b1", Components: []ComponentSpec{
					{Kind: CompMemory, Width: 16, Depth: 512},
				}},
			},
			Instances: []InstanceSpec{
				{Name: "b0_0", Block: 0},
				{Name: "b0_1", Block: 0},
				{Name: "b1_0", Block: 1},
			},
			Nets: []NetSpec{{From: 0, To: 2, Width: 8}},
		},
		Mode:   ModeSpec{Kind: "constant", CF: 1.5},
		Search: &SearchWindow{Start: 0.9, Step: 0.02, Max: 2.5},
		Stitch: StitchParams{Seed: 7, Iterations: 9000, Chains: 2, AdaptiveStop: true,
			TraceEvery: 128, Backend: "hybrid", GDIterations: 64, Check: "sampled",
			Anneal:    &AnnealParams{Chains: 2, Iterations: 9000, TempLadder: 2.5},
			Analytic:  &AnalyticParams{GDIterations: 64},
			Evo:       &EvoParams{Mu: 2, Lambda: 8, Generations: 10},
			Portfolio: &PortfolioParams{Backends: []string{"anneal", "evo"}, Threshold: 4000}},
		Implement: ImplementParams{Workers: 2, Strategy: "bisect", ProbeWorkers: 2, Check: "off"},
		Priority:  3,
	}
}

// TestRequestRoundTrip: encode → strict decode must reproduce the
// request exactly, through every nested field.
func TestRequestRoundTrip(t *testing.T) {
	want := fullRequest()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestDecodeRequestRejectsUnknownFields: a typo'd option must fail
// loudly with the typed bad_request error, not silently compile with
// defaults — at top level and inside nested objects alike.
func TestDecodeRequestRejectsUnknownFields(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"top-level", `{"design":{"builtin":"cnvW1A1"},"iteratons":5}`},
		{"nested-stitch", `{"design":{"builtin":"cnvW1A1"},"stitch":{"sede":7}}`},
		{"nested-component", `{"design":{"blocks":[{"name":"b","components":[{"kind":"logic","lust":4}]}]}}`},
		{"nested-anneal", `{"design":{"builtin":"cnvW1A1"},"stitch":{"anneal":{"chians":2}}}`},
		{"nested-evo", `{"design":{"builtin":"cnvW1A1"},"stitch":{"evo":{"mu":2,"lamda":8}}}`},
		{"nested-portfolio", `{"design":{"builtin":"cnvW1A1"},"stitch":{"portfolio":{"bakends":["anneal"]}}}`},
		{"trailing-data", `{"design":{"builtin":"cnvW1A1"}} {"design":{"builtin":"cnvW1A1"}}`},
		{"malformed", `{"design":`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest(strings.NewReader(tc.body))
			if err == nil {
				t.Fatal("decode accepted a bad body")
			}
			var ae *Error
			if !errors.As(err, &ae) || ae.Code != ErrBadRequest {
				t.Errorf("error = %v, want *Error with code %q", err, ErrBadRequest)
			}
		})
	}
	// The happy path still decodes.
	if _, err := DecodeRequest(strings.NewReader(`{"design":{"builtin":"cnvW1A1"}}`)); err != nil {
		t.Errorf("valid body rejected: %v", err)
	}
}

// TestRequestValidate covers the wire-level invariants.
func TestRequestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CompileRequest)
		ok     bool
	}{
		{"valid", func(r *CompileRequest) {}, true},
		{"builtin", func(r *CompileRequest) { r.Design = DesignSpec{Builtin: BuiltinCNVW1A1} }, true},
		{"bad-device", func(r *CompileRequest) { r.Device = "xc9k" }, false},
		{"bad-builtin", func(r *CompileRequest) { r.Design = DesignSpec{Builtin: "alexnet"} }, false},
		{"builtin-plus-blocks", func(r *CompileRequest) { r.Design.Builtin = BuiltinCNVW1A1 }, false},
		{"no-blocks", func(r *CompileRequest) { r.Design.Blocks = nil }, false},
		{"no-instances", func(r *CompileRequest) { r.Design.Instances = nil }, false},
		{"bad-component-kind", func(r *CompileRequest) { r.Design.Blocks[0].Components[0].Kind = "flipflops" }, false},
		{"instance-out-of-range", func(r *CompileRequest) { r.Design.Instances[0].Block = 9 }, false},
		{"net-out-of-range", func(r *CompileRequest) { r.Design.Nets[0].To = 99 }, false},
		{"bad-mode", func(r *CompileRequest) { r.Mode.Kind = "oracle" }, false},
		{"constant-without-cf", func(r *CompileRequest) { r.Mode = ModeSpec{Kind: "constant"} }, false},
		{"bad-search-window", func(r *CompileRequest) { r.Search = &SearchWindow{Start: 2, Step: 0.02, Max: 1} }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := fullRequest()
			tc.mutate(req)
			err := req.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.ok)
			}
			if err != nil {
				var ae *Error
				if !errors.As(err, &ae) {
					t.Errorf("validation error is %T, want *Error", err)
				}
			}
		})
	}
}

// TestParamsOptions: the wire params must map onto the structured
// options field for field, and reject the library's own invalid values
// through the same Validate() messages.
func TestParamsOptions(t *testing.T) {
	so, err := fullRequest().Stitch.Options()
	if err != nil {
		t.Fatal(err)
	}
	want := macroflow.StitchOptions{Seed: 7, Iterations: 9000, Chains: 2, AdaptiveStop: true,
		TraceEvery: 128, Backend: "hybrid", GDIterations: 64, Check: macroflow.CheckSampled,
		Anneal:    macroflow.AnnealOptions{Chains: 2, Iterations: 9000, TempLadder: 2.5},
		Analytic:  macroflow.AnalyticOptions{GDIterations: 64},
		Evo:       macroflow.EvoOptions{Mu: 2, Lambda: 8, Generations: 10},
		Portfolio: macroflow.PortfolioOptions{Backends: []string{"anneal", "evo"}, Threshold: 4000}}
	if !reflect.DeepEqual(so, want) {
		t.Errorf("StitchParams.Options() = %+v, want %+v", so, want)
	}
	// Flat-only wire params map onto the deprecated aliases, leaving the
	// sub-structs zero so the library overlay resolves them.
	flat, err := (StitchParams{Seed: 3, Iterations: 500, Chains: 1, Backend: "anneal"}).Options()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Anneal != (macroflow.AnnealOptions{}) || flat.Evo != (macroflow.EvoOptions{}) {
		t.Errorf("flat wire params populated sub-structs: %+v", flat)
	}
	if err := so.Validate(); err != nil {
		t.Errorf("converted options failed the library's Validate: %v", err)
	}
	if _, err := (StitchParams{Check: "everything"}).Options(); err == nil {
		t.Error("bad check level accepted")
	}

	im, err := fullRequest().Implement.Options()
	if err != nil {
		t.Fatal(err)
	}
	if im.Workers != 2 || im.Strategy != macroflow.SearchForceBisect || im.ProbeWorkers != 2 {
		t.Errorf("ImplementParams.Options() = %+v", im)
	}
	for spelling, want := range map[string]macroflow.SearchChoice{
		"": macroflow.SearchFlowDefault, "default": macroflow.SearchFlowDefault,
		"linear": macroflow.SearchForceLinear, "bisect": macroflow.SearchForceBisect,
	} {
		im, err := (ImplementParams{Strategy: spelling}).Options()
		if err != nil {
			t.Fatalf("strategy %q: %v", spelling, err)
		}
		if im.Strategy != want {
			t.Errorf("strategy %q = %v, want %v", spelling, im.Strategy, want)
		}
	}
	if _, err := (ImplementParams{Strategy: "quantum"}).Options(); err == nil {
		t.Error("bad strategy accepted")
	}
}

// TestStitchSummaryPortfolio: a portfolio run's cross-backend report
// must survive the library → wire mapping and a JSON round trip (the
// additive-within-v1 portfolio object of the result envelope).
func TestStitchSummaryPortfolio(t *testing.T) {
	trace := []macroflow.CostPoint{{Iter: 256, Cost: 500}, {Iter: 512, Cost: 123.5}}
	rep := &macroflow.StitchReport{
		Backend: "portfolio", Placed: 10, FinalCost: 123.5, Trace: trace,
		Portfolio: &macroflow.PortfolioReport{
			Winner:    1,
			Threshold: 4000,
			Entrants: []macroflow.PortfolioEntrant{
				{ChainReport: macroflow.ChainReport{Chain: 0, Moves: 100, FinalCost: 200, Trace: trace},
					Backend: "anneal", ThresholdIter: -1, Iterations: 100, Unplaced: 1},
				{ChainReport: macroflow.ChainReport{Chain: 1, Moves: 90, FinalCost: 123.5, Trace: trace},
					Backend: "evo", Winner: true, ThresholdIter: 256, Iterations: 90},
			},
		},
	}
	sum := stitchSummary(rep)
	if sum.Portfolio == nil || sum.Portfolio.Winner != 1 || len(sum.Portfolio.Entrants) != 2 {
		t.Fatalf("wire portfolio = %+v", sum.Portfolio)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var got StitchSummary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, sum) {
		t.Errorf("portfolio summary round trip diverged:\n got %+v\nwant %+v", &got, sum)
	}
	if got.Portfolio.Entrants[1].Backend != "evo" || !got.Portfolio.Entrants[1].Winner {
		t.Errorf("winner entrant lost its identity: %+v", got.Portfolio.Entrants[1])
	}
	// Non-portfolio reports must not grow a portfolio object.
	if s := stitchSummary(&macroflow.StitchReport{Backend: "anneal"}); s.Portfolio != nil {
		t.Error("anneal summary attached a portfolio report")
	}
}

// TestBuildDesign: the wire design must build a macroflow.Design with
// the right shape, and InstanceCounts must tally per block type.
func TestBuildDesign(t *testing.T) {
	req := fullRequest()
	d, err := req.Design.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTypes() != 2 || d.NumInstances() != 3 {
		t.Errorf("built design has %d types / %d instances, want 2 / 3", d.NumTypes(), d.NumInstances())
	}
	if got := req.Design.InstanceCounts(); !reflect.DeepEqual(got, []int{2, 1}) {
		t.Errorf("InstanceCounts() = %v, want [2 1]", got)
	}
	if (&DesignSpec{Builtin: BuiltinCNVW1A1}).InstanceCounts() != nil {
		t.Error("builtin designs must report nil instance counts")
	}
	if _, err := (&DesignSpec{Builtin: BuiltinCNVW1A1}).BuildDesign(); err == nil {
		t.Error("builtin designs must not build client-side")
	}
}

// TestErrorEnvelopeShape: the typed error must round-trip through its
// envelope and render a stable message.
func TestErrorEnvelopeShape(t *testing.T) {
	e := &Error{Code: ErrQueueFull, Message: "compile queue is full (64 jobs)"}
	data, _ := json.Marshal(ErrorEnvelope{Error: e})
	var env ErrorEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env.Error, e) {
		t.Errorf("envelope round trip = %+v, want %+v", env.Error, e)
	}
	if got, want := e.Error(), "macroflowd: queue_full: compile queue is full (64 jobs)"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}
