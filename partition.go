package macroflow

import (
	"fmt"

	"macroflow/internal/fabric"
	"macroflow/internal/partition"
	"macroflow/internal/stitch"
)

// PartitionOptions enables multi-region compilation: the device is
// carved into clock-region shards, spec blocks are assigned to shards
// by the cut-minimizing partitioner, and each shard is stitched in
// parallel with cross-shard nets pulling toward the remote shard
// (embed via CNVOptions.Partition / CompileOptions.Partition). The
// zero value disables partitioning and keeps single-device runs
// byte-identical to previous releases.
type PartitionOptions struct {
	// Shards is the number of clock-region bands to carve the device
	// into (0 disables partitioning; 1 is a valid degenerate run).
	Shards int
	// Backend selects the partitioning algorithm: "" or "greedy" (the
	// deterministic demand-descending construction plus refinement
	// sweeps) or "evo" (the (μ+λ) evolutionary partitioner). Both are
	// bit-reproducible from (Seed, member set).
	Backend string
	// CutPenalty weighs the cross-shard cut bandwidth in the combined
	// objective (TotalCost = Σ shard wirelength + CutPenalty × cut
	// weight). 0 selects the default of 1.
	CutPenalty float64
	// Refinements bounds the greedy backend's refinement passes
	// (0 selects the partitioner default of 8).
	Refinements int
}

// enabled reports whether partitioned compilation was requested.
func (o PartitionOptions) enabled() bool { return o.Shards > 0 }

// Validate rejects partition options the flow would refuse. RunCNV,
// Compile and the macroflowd request decoder all call it, so the CLI
// and the HTTP service reject bad options with the same messages.
func (o PartitionOptions) Validate() error {
	if o.Shards < 0 {
		return fmt.Errorf("macroflow: PartitionOptions.Shards must be >= 0 (got %d)", o.Shards)
	}
	if o.CutPenalty < 0 {
		return fmt.Errorf("macroflow: PartitionOptions.CutPenalty must be >= 0 (got %g)", o.CutPenalty)
	}
	if o.Refinements < 0 {
		return fmt.Errorf("macroflow: PartitionOptions.Refinements must be >= 0 (got %d)", o.Refinements)
	}
	_, err := partition.ParseBackend(o.Backend)
	return err
}

// MemberReport is one fabric-set member's share of a partitioned run.
type MemberReport struct {
	// Name identifies the member ("shard0", ...).
	Name string
	// Instances counts the spec instances assigned to this member.
	Instances int
	// UsedSlices/CapSlices are the member's assigned slice demand and
	// slice capacity; Utilization is their ratio.
	UsedSlices  int
	CapSlices   int
	Utilization float64
	// Stitch is the member's own stitching report (shard-local
	// coordinates; the parent-level origins are already merged into the
	// aggregate report's map).
	Stitch StitchReport
}

// PartitionReport is the outcome of a partitioned compilation: the
// assignment quality plus one report per member.
type PartitionReport struct {
	// Backend echoes the partitioner backend that produced the
	// assignment.
	Backend string
	// Members holds one report per fabric-set member, in member order.
	Members []MemberReport
	// CutNets counts the nets whose endpoints landed in different
	// members; CutWeight is their summed weight.
	CutNets   int
	CutWeight float64
	// CutPenalty is the effective cut weight multiplier; CutCost is
	// CutPenalty × CutWeight.
	CutPenalty float64
	CutCost    float64
	// TotalCost is the combined objective: the shards' summed final
	// wirelength plus CutCost.
	TotalCost float64
}

// stitchPartitioned is the partitioned counterpart of stitchDesign:
// carve the flow's device into Shards clock-region bands, assign
// instances to bands with the cut-minimizing partitioner, stitch every
// band in parallel (cross-band nets anchoring toward the remote band's
// center), and reduce into one aggregate report plus the per-member
// breakdown. Bit-reproducible from (Seed, member set) regardless of
// GOMAXPROCS.
func (f *Flow) stitchPartitioned(prob *stitch.Problem, so StitchOptions, po PartitionOptions, parent *Span, vr *VerifyReport) (StitchReport, *PartitionReport, error) {
	set, err := fabric.Shards(f.dev, po.Shards)
	if err != nil {
		return StitchReport{}, nil, err
	}
	pp := partition.FromStitch(prob, set)
	assign, err := partition.Assign(pp, partition.Config{
		Seed:        so.Seed,
		Backend:     partition.Backend(po.Backend),
		Refinements: po.Refinements,
		Obs:         so.Obs,
		Span:        parent,
	})
	if err != nil {
		return StitchReport{}, nil, err
	}
	scfg := stitchConfig(so)
	scfg.Span = parent
	sres, err := stitch.RunSharded(prob, stitch.ShardsOf(set), assign.Member, scfg)
	if err != nil {
		return StitchReport{}, nil, err
	}
	verifyPartition(so.Check, prob, set, sres, assign.Cut, vr, so.Obs, parent)

	cutPenalty := po.CutPenalty
	if cutPenalty == 0 {
		cutPenalty = 1
	}
	be, _ := partition.ParseBackend(po.Backend)
	pr := &PartitionReport{
		Backend:    string(be),
		CutNets:    len(sres.CutNets),
		CutWeight:  sres.CutWeight,
		CutPenalty: cutPenalty,
		CutCost:    cutPenalty * sres.CutWeight,
	}
	pr.TotalCost = sres.FinalCost + pr.CutCost
	for k, m := range set.Members {
		r := sres.Results[k]
		mrep := MemberReport{
			Name:       m.Name,
			UsedSlices: assign.Util[k].Slices(),
			CapSlices:  m.Capacity.Slices(),
			Stitch: StitchReport{
				Backend:         string(scfg.Backend),
				GDIters:         r.GDIters,
				Placed:          r.Placed,
				Unplaced:        r.Unplaced,
				FinalCost:       r.FinalCost,
				ConvergenceIter: r.ConvergenceIter,
				IllegalMoves:    r.IllegalMoves,
				Iterations:      r.Iterations,
				Exchanges:       r.Exchanges,
				FreeTiles:       r.FreeTiles,
				LargestFreeRect: r.LargestFreeRect,
				TraceEvery:      r.TraceEvery,
			},
		}
		for _, p := range r.CostTrace {
			mrep.Stitch.Trace = append(mrep.Stitch.Trace, CostPoint{Iter: p.Iter, Cost: p.Cost})
		}
		if n := len(mrep.Stitch.Trace); n > 0 {
			mrep.Stitch.Trace[n-1].Cost = r.FinalCost
		}
		for _, cs := range r.Chains {
			mrep.Stitch.Chains = append(mrep.Stitch.Chains, chainReport(cs))
		}
		for _, a := range assign.Member {
			if a == k {
				mrep.Instances++
			}
		}
		if mrep.CapSlices > 0 {
			mrep.Utilization = float64(mrep.UsedSlices) / float64(mrep.CapSlices)
		}
		pr.Members = append(pr.Members, mrep)
	}

	// The aggregate report reads like a single-device stitch of the whole
	// design: global origins on the parent device, combined objective as
	// the headline cost.
	agg := StitchReport{
		Backend:   string(scfg.Backend),
		Placed:    sres.Placed,
		Unplaced:  sres.Unplaced,
		FinalCost: pr.TotalCost,
		Map:       renderStitchMap(f.dev, prob, sres.Origins),
	}
	for _, mrep := range pr.Members {
		agg.Iterations += mrep.Stitch.Iterations
		agg.IllegalMoves += mrep.Stitch.IllegalMoves
		agg.Exchanges += mrep.Stitch.Exchanges
		agg.GDIters += mrep.Stitch.GDIters
	}
	return agg, pr, nil
}
