package macroflow

import (
	"fmt"
	"io"

	"macroflow/internal/ml"
	"macroflow/internal/netlist"
	"macroflow/internal/obs"
	"macroflow/internal/pblock"
	"macroflow/internal/place"
	"macroflow/internal/synth"
	"macroflow/internal/timing"
)

// ModuleResult is the public outcome of implementing one module.
type ModuleResult struct {
	Name string
	// CF is the correction factor the module was implemented with.
	CF float64
	// ToolRuns counts place-and-route attempts spent finding it.
	ToolRuns int
	// EstSlices is the optimistic quick-placement estimate.
	EstSlices int
	// UsedSlices is the slice count of the final placement.
	UsedSlices int
	// PBlock is the area constraint in tile coordinates.
	PBlock string
	// LongestPathNS is the estimated critical path.
	LongestPathNS float64
	// Irregularity measures footprint raggedness (0 = rectangle).
	Irregularity float64
	// MaxFanout, ControlSets, CarryChains summarize the synthesis stats.
	MaxFanout   int
	ControlSets int
	CarryChains int
}

// compile elaborates and optimizes a spec. sp, when non-nil, is the
// trace span the synthesis and quick-place child spans nest under.
func (f *Flow) compile(s *Spec, sp *obs.Span) (*netlist.Module, place.ShapeReport, error) {
	esp := sp.Child("synth.elaborate")
	m, err := synth.Elaborate(s.inner)
	esp.End()
	if err != nil {
		return nil, place.ShapeReport{}, err
	}
	osp := sp.Child("synth.optimize")
	_, err = synth.Optimize(m)
	osp.End()
	if err != nil {
		return nil, place.ShapeReport{}, err
	}
	qsp := sp.Child("place.quick")
	rep := place.QuickPlace(m)
	qsp.End()
	return m, rep, nil
}

func (f *Flow) moduleResult(m *netlist.Module, rep place.ShapeReport, sr pblock.SearchResult) ModuleResult {
	r := ModuleResult{
		Name:        m.Name,
		CF:          sr.CF,
		ToolRuns:    sr.ToolRuns,
		EstSlices:   rep.EstSlices,
		MaxFanout:   rep.Stats.MaxFanout,
		ControlSets: rep.Stats.ControlSets,
		CarryChains: rep.Stats.NumChains,
	}
	if sr.Impl != nil {
		r.UsedSlices = sr.Impl.Placement.UsedSlices
		r.PBlock = sr.Impl.PBlock.Rect.String()
		r.Irregularity = sr.Impl.Placement.Footprint.Irregularity()
		r.LongestPathNS = timing.LongestPath(f.dev, sr.Impl.Placement, sr.Impl.Route, timing.DefaultModel())
	}
	return r
}

// Implement places and routes the module inside a PBlock built with a
// fixed correction factor.
func (f *Flow) Implement(s *Spec, cf float64) (ModuleResult, error) {
	m, rep, err := f.compile(s, nil)
	if err != nil {
		return ModuleResult{}, err
	}
	impl, err := pblock.Implement(f.dev, m, rep, cf, f.cfg)
	if err != nil {
		return ModuleResult{}, err
	}
	return f.moduleResult(m, rep, pblock.SearchResult{CF: cf, Impl: impl, ToolRuns: 1}), nil
}

// MinCF sweeps the correction factor at the configured resolution and
// returns the first (minimal) feasible implementation.
func (f *Flow) MinCF(s *Spec) (ModuleResult, error) {
	m, rep, err := f.compile(s, nil)
	if err != nil {
		return ModuleResult{}, err
	}
	sr, err := pblock.MinCF(f.dev, m, rep, f.search, f.cfg)
	if err != nil {
		return ModuleResult{}, err
	}
	return f.moduleResult(m, rep, sr), nil
}

// ImplementWithEstimator seeds the CF from the estimator and refines per
// the paper's §VIII procedure (coarse +0.1 steps up on underestimates,
// then a fine 0.02 scan of the last interval).
func (f *Flow) ImplementWithEstimator(s *Spec, e *Estimator) (ModuleResult, error) {
	m, rep, err := f.compile(s, nil)
	if err != nil {
		return ModuleResult{}, err
	}
	est := e.predict(rep)
	sr, err := pblock.FromEstimate(f.dev, m, rep, est, f.search, f.cfg)
	if err != nil {
		return ModuleResult{}, err
	}
	return f.moduleResult(m, rep, sr), nil
}

// Features returns the estimator features of a spec — useful for
// inspecting what the models see.
func (f *Flow) Features(s *Spec) (map[string]float64, error) {
	_, rep, err := f.compile(s, nil)
	if err != nil {
		return nil, err
	}
	feats := ml.Extract(rep)
	names := ml.All.Names()
	vec := ml.All.Vector(feats)
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = vec[i]
	}
	return out, nil
}

// String renders a module result compactly.
func (r ModuleResult) String() string {
	return fmt.Sprintf("%s: cf=%.2f slices=%d (est %d) pblock=%s runs=%d path=%.2fns",
		r.Name, r.CF, r.UsedSlices, r.EstSlices, r.PBlock, r.ToolRuns, r.LongestPathNS)
}

// DumpNetlist compiles the spec and writes its post-synthesis netlist in
// the line-oriented text format of the netlist package — useful for
// inspecting what elaboration produced for a block.
func (f *Flow) DumpNetlist(w io.Writer, s *Spec) error {
	m, _, err := f.compile(s, nil)
	if err != nil {
		return err
	}
	return m.WriteText(w)
}
