module macroflow

go 1.22
