package macroflow

import (
	"testing"
)

// TestPersistentBlockCacheCrossProcess exercises the persistent layer
// end to end: a compile populates the on-disk cache, and a second flow
// with a fresh cache instance over the same directory (modeling a new
// process) serves every block from disk — zero tool runs, identical
// per-block results.
func TestPersistentBlockCacheCrossProcess(t *testing.T) {
	dir := t.TempDir()

	flow, err := NewFlow("xc7z020")
	if err != nil {
		t.Fatal(err)
	}
	flow.SetSearch(0.9, 0.02, 3.0)
	cold, err := NewPersistentBlockCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := flow.Compile(smallDesign(120), MinSweepCF(), CompileOptions{Cache: cold, SkipStitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.ToolRuns == 0 {
		t.Fatal("cold compile must run the tools")
	}
	if first.Cache.Stores != len(first.Blocks) {
		t.Errorf("stores = %d, want one per block type (%d)", first.Cache.Stores, len(first.Blocks))
	}
	if first.Cache.DiskHits != 0 || first.CacheHits != 0 {
		t.Errorf("cold compile reported hits: %+v", first.Cache)
	}

	// New process: fresh flow, fresh cache instance, same directory.
	flow2, err := NewFlow("xc7z020")
	if err != nil {
		t.Fatal(err)
	}
	flow2.SetSearch(0.9, 0.02, 3.0)
	warm, err := NewPersistentBlockCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := flow2.Compile(smallDesign(120), MinSweepCF(), CompileOptions{Cache: warm, SkipStitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.ToolRuns != 0 {
		t.Errorf("warm compile ran %d tools, want 0", second.ToolRuns)
	}
	if second.Cache.DiskHits != len(second.Blocks) {
		t.Errorf("disk hits = %d, want %d", second.Cache.DiskHits, len(second.Blocks))
	}
	if len(second.Blocks) != len(first.Blocks) {
		t.Fatalf("block count changed: %d vs %d", len(second.Blocks), len(first.Blocks))
	}
	for i := range second.Blocks {
		a, b := first.Blocks[i], second.Blocks[i]
		if a.Name != b.Name || a.CF != b.CF || a.PBlock != b.PBlock || a.UsedSlices != b.UsedSlices {
			t.Errorf("block %s rebuilt differently: %+v vs %+v", a.Name, a, b)
		}
	}

	// Third compile in the same "process": the in-memory layer serves it.
	third, err := flow2.Compile(smallDesign(120), MinSweepCF(), CompileOptions{Cache: warm, SkipStitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cache.MemHits != len(third.Blocks) || third.ToolRuns != 0 {
		t.Errorf("mem-layer compile: %+v, runs=%d", third.Cache, third.ToolRuns)
	}
}

// TestPersistentCacheServesBisectFlow asserts the strategy-agnostic
// cache key: records stored by a linear-search flow are served to a
// flow configured for the bisect strategy, because both return the same
// minimal CFs.
func TestPersistentCacheServesBisectFlow(t *testing.T) {
	dir := t.TempDir()

	lin, err := NewFlow("xc7z020")
	if err != nil {
		t.Fatal(err)
	}
	lin.SetSearch(0.9, 0.02, 3.0)
	c1, err := NewPersistentBlockCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := lin.Compile(smallDesign(120), MinSweepCF(), CompileOptions{Cache: c1, SkipStitch: true})
	if err != nil {
		t.Fatal(err)
	}

	bis, err := NewFlow("xc7z020")
	if err != nil {
		t.Fatal(err)
	}
	bis.SetSearch(0.9, 0.02, 3.0)
	bis.SetSearchStrategy(SearchBisect)
	bis.SetProbeWorkers(4)
	c2, err := NewPersistentBlockCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := bis.Compile(smallDesign(120), MinSweepCF(), CompileOptions{Cache: c2, SkipStitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.ToolRuns != 0 || second.Cache.DiskHits != len(second.Blocks) {
		t.Errorf("bisect flow must be served from the linear flow's records: %+v, runs=%d",
			second.Cache, second.ToolRuns)
	}
	for i := range second.Blocks {
		if second.Blocks[i].CF != first.Blocks[i].CF {
			t.Errorf("block %s: CF %.2f vs %.2f", second.Blocks[i].Name, second.Blocks[i].CF, first.Blocks[i].CF)
		}
	}
}
