package macroflow

import (
	"math"
	"testing"

	"macroflow/internal/oracle"
)

// smallDesign builds a 3-type, 6-instance pipeline small enough for the
// oracle's full re-probe to stay fast.
func verifySmallDesign(t *testing.T) *Design {
	t.Helper()
	d := NewDesign()
	a := d.AddBlockType(NewSpec("va").Logic(120, 4, 2))
	b := d.AddBlockType(NewSpec("vb").Logic(200, 4, 3).ShiftRegs(2, 8, 2, 2))
	c := d.AddBlockType(NewSpec("vc").Logic(90, 3, 2))
	prev := -1
	for i, ti := range []int{a, b, c, a, b, c} {
		inst, err := d.AddInstance(ti, string(rune('p'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 {
			if err := d.Connect(prev, inst, 16); err != nil {
				t.Fatal(err)
			}
		}
		prev = inst
	}
	return d
}

func verifyFlow(t *testing.T) *Flow {
	t.Helper()
	f, err := NewFlow("xc7z020")
	if err != nil {
		t.Fatal(err)
	}
	f.SetSearch(0.9, 0.02, 3.0)
	return f
}

// TestCompileCheckFullClean: a clean compile under CheckLevel=full
// reports zero violations, and CheckOff leaves Verify nil.
func TestCompileCheckFullClean(t *testing.T) {
	f := verifyFlow(t)
	d := verifySmallDesign(t)
	opts := CompileOptions{
		Stitch:    StitchOptions{Seed: 1, Iterations: 5000, Check: CheckFull},
		Implement: ImplementOptions{Check: CheckFull},
	}
	res, err := f.Compile(d, MinSweepCF(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil {
		t.Fatal("CheckFull produced no verify report")
	}
	if !res.Verify.Ok() {
		t.Fatalf("clean compile reported violations:\n%s", res.Verify.String())
	}
	if res.Verify.Checks == 0 {
		t.Fatal("verify report ran zero checks")
	}

	off, err := f.Compile(d, MinSweepCF(), CompileOptions{
		Stitch: StitchOptions{Seed: 1, Iterations: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if off.Verify != nil {
		t.Fatal("CheckOff produced a verify report")
	}
	// Verification is read-only: the audited run's results are identical.
	if off.Stitch.FinalCost != res.Stitch.FinalCost || off.Stitch.Placed != res.Stitch.Placed {
		t.Errorf("CheckFull perturbed results: cost %v vs %v, placed %d vs %d",
			res.Stitch.FinalCost, off.Stitch.FinalCost, res.Stitch.Placed, off.Stitch.Placed)
	}
}

// TestRunCNVCheckFullClean: the cnvW1A1 reproduction under the full
// audit — every block's placement recounted, every minimal-CF claim
// re-probed across the whole grid below it, the stitched design
// recounted tile-by-tile — reports zero violations.
func TestRunCNVCheckFullClean(t *testing.T) {
	if testing.Short() {
		t.Skip("cnv flow in -short mode")
	}
	f := verifyFlow(t)
	f.SetSearch(0.5, 0.02, 3.0)
	res, err := f.RunCNV(MinSweepCF(), CNVOptions{
		Stitch:    StitchOptions{Seed: 1, Iterations: 20000, Check: CheckFull},
		Implement: ImplementOptions{Check: CheckFull},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil || res.Verify.Checks == 0 {
		t.Fatal("no verification ran")
	}
	if !res.Verify.Ok() {
		t.Fatalf("clean cnv run reported violations:\n%s", res.Verify.String())
	}
}

// TestChaosCorruptedCacheDetected is the dedicated "corrupted cache
// entry" fault-class test, end to end through Compile: a persistent
// cache record whose CF was corrupted still rebuilds (the warm-start
// audit checks the placement, not the CF), and only the oracle's
// cache-equivalence checker catches the lie.
func TestChaosCorruptedCacheDetected(t *testing.T) {
	f := verifyFlow(t)
	d := verifySmallDesign(t)
	dir := t.TempDir()

	warm, err := NewPersistentBlockCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Compile(d, MinSweepCF(), CompileOptions{
		SkipStitch: true,
		Implement:  ImplementOptions{Cache: warm},
	}); err != nil {
		t.Fatal(err)
	}

	ch := oracle.NewChaos(9)
	path, err := ch.CorruptCacheEntry(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh process (new BlockCache, same directory) serves the
	// corrupted record through the disk layer.
	cold, err := NewPersistentBlockCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Compile(d, MinSweepCF(), CompileOptions{
		SkipStitch: true,
		Implement:  ImplementOptions{Cache: cold, Check: CheckFull},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.DiskHits == 0 {
		t.Fatalf("corrupted record %s was not served from disk — the fault never reached the checker", path)
	}
	if res.Verify == nil || res.Verify.Ok() {
		t.Fatalf("corrupted cache entry %s went undetected", path)
	}
	if res.Verify.ByChecker(oracle.CheckerCache) == 0 && res.Verify.ByChecker(oracle.CheckerMinCF) == 0 {
		t.Fatalf("violations attributed to the wrong checker:\n%s", res.Verify.String())
	}
}

// TestRecordEstimatorDrift pins the bucket semantics of the drift
// counters: cumulative Prometheus-style le buckets (every bound at or
// above the error increments, +Inf always does) plus an abs_err summary.
func TestRecordEstimatorDrift(t *testing.T) {
	rec := NewRecorder()
	recordEstimatorDrift(rec, 1.00, 1.03) // err 0.03: first bucket missed
	recordEstimatorDrift(rec, 1.00, 1.00) // err 0: all buckets
	recordEstimatorDrift(rec, 1.02, 1.00) // err 0.02: exact boundary counts
	recordEstimatorDrift(rec, 2.00, 1.00) // err 1.0: only +Inf

	want := map[string]int64{
		`estimator.abs_err_bucket{le="0.02"}`: 2,
		`estimator.abs_err_bucket{le="0.05"}`: 3,
		`estimator.abs_err_bucket{le="0.1"}`:  3,
		`estimator.abs_err_bucket{le="0.2"}`:  3,
		`estimator.abs_err_bucket{le="0.5"}`:  3,
		`estimator.abs_err_bucket{le="+Inf"}`: 4,
	}
	for name, n := range want {
		if got := rec.CounterValue(name); got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}
	h := rec.HistogramValue("estimator.abs_err")
	if h.Count != 4 {
		t.Errorf("abs_err count = %d, want 4", h.Count)
	}
	if math.Abs(h.Sum-1.05) > 1e-9 {
		t.Errorf("abs_err sum = %g, want 1.05", h.Sum)
	}
}

// TestEstimatorDriftFromCheckAudit runs the end-to-end hook: a compile
// in estimator mode under a -check audit must compare every audited
// block's predicted CF against the oracle-verified one and populate the
// drift counters; the same compile without the estimator records none.
func TestEstimatorDriftFromCheckAudit(t *testing.T) {
	f, est, _ := trainQuick(t, DecisionTree, FeaturesAdditional)
	f.SetSearch(0.9, 0.02, 3.0)
	d := verifySmallDesign(t)
	rec := NewRecorder()
	res, err := f.Compile(d, EstimatorCF(est), CompileOptions{
		SkipStitch: true,
		Implement:  ImplementOptions{Check: CheckFull, Obs: rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil || res.Verify.Checks == 0 {
		t.Fatal("no verification ran")
	}
	audited := rec.CounterValue(`estimator.abs_err_bucket{le="+Inf"}`)
	if audited != 3 {
		t.Errorf("drift comparisons = %d, want one per audited block type (3)", audited)
	}
	if h := rec.HistogramValue("estimator.abs_err"); h.Count != audited {
		t.Errorf("abs_err samples = %d, want %d", h.Count, audited)
	}

	// Sweep mode has no prediction to compare: no drift series.
	rec2 := NewRecorder()
	if _, err := f.Compile(d, MinSweepCF(), CompileOptions{
		SkipStitch: true,
		Implement:  ImplementOptions{Check: CheckFull, Obs: rec2},
	}); err != nil {
		t.Fatal(err)
	}
	if n := rec2.CounterValue(`estimator.abs_err_bucket{le="+Inf"}`); n != 0 {
		t.Errorf("sweep-mode compile recorded %d drift comparisons, want 0", n)
	}
}

func TestParseCheckLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CheckLevel
	}{{"off", CheckOff}, {"", CheckOff}, {"sampled", CheckSampled}, {"full", CheckFull}} {
		got, err := ParseCheckLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCheckLevel(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("String() round-trip lost %q", tc.in)
		}
	}
	if _, err := ParseCheckLevel("paranoid"); err == nil {
		t.Error("unknown level accepted")
	}
}
