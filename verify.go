package macroflow

import (
	"fmt"
	"math"
	"strconv"

	"macroflow/internal/fabric"
	"macroflow/internal/obs"
	"macroflow/internal/oracle"
	"macroflow/internal/pblock"
	"macroflow/internal/place"
	"macroflow/internal/stitch"
)

// CheckLevel selects how much differential verification runs alongside
// a flow call. The oracle (internal/oracle) is a deliberately slow,
// brute-force reference implementation of the flow's contracts; turning
// it on trades runtime for an independent audit of every fast path.
// Verification is read-only recomputation: results are bit-identical at
// every level, only the report differs.
type CheckLevel int

const (
	// CheckOff (the zero value) runs no verification — the default, with
	// zero overhead and output identical to releases without the oracle.
	CheckOff CheckLevel = iota
	// CheckSampled audits a deterministic sample of blocks (every
	// checkSampleEvery-th type) and bounds the min-CF re-probe to one
	// grid point below each claim — cheap enough for CI.
	CheckSampled
	// CheckFull audits every block, re-probes the full CF grid below
	// every minimality claim, and re-implements every cache-served block
	// from scratch for byte-equivalence — the paranoid post-refactor run.
	CheckFull
)

// String renders the level as its flag spelling.
func (l CheckLevel) String() string {
	switch l {
	case CheckSampled:
		return "sampled"
	case CheckFull:
		return "full"
	}
	return "off"
}

// Validate rejects levels outside the declared range (a CheckLevel
// forged by casting, or decoded from an untrusted source).
func (l CheckLevel) Validate() error {
	switch l {
	case CheckOff, CheckSampled, CheckFull:
		return nil
	}
	return fmt.Errorf("macroflow: invalid check level %d (want CheckOff, CheckSampled or CheckFull)", int(l))
}

// ParseCheckLevel maps the flag spellings "off", "sampled" and "full"
// onto a CheckLevel.
func ParseCheckLevel(s string) (CheckLevel, error) {
	switch s {
	case "off", "":
		return CheckOff, nil
	case "sampled":
		return CheckSampled, nil
	case "full":
		return CheckFull, nil
	}
	return CheckOff, fmt.Errorf("macroflow: unknown check level %q (want off, sampled or full)", s)
}

// VerifyReport is the structured outcome of a verification pass: how
// many contract checks ran and every violation found. A flow result's
// Verify field holds one when a CheckLevel was requested (nil
// otherwise); Ok/Err/String summarize it.
type VerifyReport = oracle.Report

// Violation is one broken contract found by the oracle.
type Violation = oracle.Violation

// checkSampleEvery is CheckSampled's deterministic stride over block
// type indices: type 0 of every design is always audited, so a sampled
// run can never silently verify nothing.
const checkSampleEvery = 8

// sampleBlock reports whether block type ti is audited at this level.
func (l CheckLevel) sampleBlock(ti int) bool {
	switch l {
	case CheckFull:
		return true
	case CheckSampled:
		return ti%checkSampleEvery == 0
	}
	return false
}

// verifyBlocks cross-checks implemented blocks against the oracle after
// the implementation phase: placement legality recounted from first
// principles, the claimed CF re-probed (with the grid below it when the
// mode claims minimality), and cache-served blocks re-implemented from
// scratch and compared byte-for-byte. Violations accumulate in vr and
// surface through the oracle.checks / oracle.violations counters.
func (f *Flow) verifyBlocks(level CheckLevel, mode CFMode, search pblock.SearchConfig, impls []*pblock.Implementation, blocks []ModuleResult, hits []blockHit, vr *VerifyReport, rec *Recorder, parent *Span) {
	if level == CheckOff || vr == nil {
		return
	}
	sp := obs.StartChild(rec, parent, "oracle.check",
		obs.String("phase", "implement"), obs.String("level", level.String()))
	beforeChecks, beforeViol := vr.Checks, len(vr.Violations)
	// The oracle must not trust — or perturb — the audited run's caches
	// and traces: probes run cold and unrecorded.
	s := search
	s.Obs, s.Span, s.Cache = nil, nil, nil
	for ti := range impls {
		if impls[ti] == nil || impls[ti].Placement == nil || !level.sampleBlock(ti) {
			continue
		}
		impl := impls[ti]
		oracle.CheckImplementation(f.dev, impl, vr)
		m := impl.Placement.Module
		if m == nil {
			vr.Violate(oracle.CheckerImplementation, "?", "block %d placement carries no module", ti)
			continue
		}
		shape := place.QuickPlace(m)
		// Minimality on the search grid is only claimed by the sweep
		// modes; constant and estimator-seeded CFs get a feasibility-only
		// re-probe.
		below := 0
		if mode.kind == "minsweep" || (mode.kind == "estimator" && blocks[ti].EstSlices < 6) {
			below = -1
			if level == CheckSampled {
				below = 1
			}
		}
		oracle.CheckMinCF(f.dev, m, shape, blocks[ti].CF, below, s, f.cfg, vr)
		if mode.kind == "estimator" && mode.estimator != nil {
			recordEstimatorDrift(rec, mode.estimator.predict(shape), blocks[ti].CF)
		}
		if hits[ti].kind != hitMiss {
			cached := pblock.SearchResult{CF: blocks[ti].CF, Impl: impl}
			fresh, err := f.implementModule(m, shape, mode, s)
			oracle.CheckEquivalence(m.Name, cached, fresh, err, vr)
		}
	}
	finishVerify(sp, rec, vr, beforeChecks, beforeViol)
}

// verifyStitch cross-checks a stitched design: legality (containment,
// column compatibility, exclusive tile ownership) and the reported cost
// against a from-scratch recomputation. Both levels run the full check —
// stitched-design verification is cheap relative to annealing.
func verifyStitch(level CheckLevel, prob *stitch.Problem, sres *stitch.Result, vr *VerifyReport, rec *Recorder, parent *Span) {
	if level == CheckOff || vr == nil {
		return
	}
	sp := obs.StartChild(rec, parent, "oracle.check",
		obs.String("phase", "stitch"), obs.String("level", level.String()))
	beforeChecks, beforeViol := vr.Checks, len(vr.Violations)
	oracle.CheckPlacement(prob, sres.Origins, vr)
	oracle.CheckCost(prob, sres.Origins, sres.FinalCost, sres.Placed, sres.Unplaced, vr)
	finishVerify(sp, rec, vr, beforeChecks, beforeViol)
}

// verifyPartition cross-checks a partitioned run: the assignment's
// completeness, capacity feasibility and cut weight recounted from
// first principles (oracle.CheckPartition), plus every shard's
// placement legality and reported cost audited on its own sub-problem.
// Both levels run the full check.
func verifyPartition(level CheckLevel, prob *stitch.Problem, set *fabric.Set, sres *stitch.ShardedResult, cut float64, vr *VerifyReport, rec *Recorder, parent *Span) {
	if level == CheckOff || vr == nil {
		return
	}
	sp := obs.StartChild(rec, parent, "oracle.check",
		obs.String("phase", "partition"), obs.String("level", level.String()))
	beforeChecks, beforeViol := vr.Checks, len(vr.Violations)
	oracle.CheckPartition(prob, set.Capacities(), sres.Assign, cut, vr)
	for k := range sres.Problems {
		r := sres.Results[k]
		oracle.CheckPlacement(sres.Problems[k], r.Origins, vr)
		oracle.CheckCost(sres.Problems[k], r.Origins, r.FinalCost, r.Placed, r.Unplaced, vr)
	}
	finishVerify(sp, rec, vr, beforeChecks, beforeViol)
}

// estimatorDriftBuckets are the cumulative |predicted − verified| CF
// error bounds of the estimator.abs_err_bucket counters (the paper's
// 0.02 grid step up to a 0.5 gross miss, plus the implicit +Inf).
var estimatorDriftBuckets = []float64{0.02, 0.05, 0.1, 0.2, 0.5}

// recordEstimatorDrift publishes one estimator-vs-oracle comparison:
// whenever a -check audit verifies a block compiled in estimator mode,
// the absolute error between the model's predicted CF and the
// oracle-verified minimal CF lands in Prometheus-style cumulative
// le-labeled counters (estimator.abs_err_bucket{le="..."}) plus an
// estimator.abs_err summary. Scraped over time, the bucket ratios are
// the estimator-drift signal the active-learning loop (ROADMAP item 5)
// will retrain on: a growing high-le share means production traffic
// has drifted from the training distribution.
func recordEstimatorDrift(rec *Recorder, predicted, verified float64) {
	err := math.Abs(predicted - verified)
	for _, b := range estimatorDriftBuckets {
		if err <= b+1e-9 {
			rec.Add(fmt.Sprintf("estimator.abs_err_bucket{le=%q}", strconv.FormatFloat(b, 'g', -1, 64)), 1)
		}
	}
	rec.Add(`estimator.abs_err_bucket{le="+Inf"}`, 1)
	rec.Observe("estimator.abs_err", err)
}

// finishVerify publishes one verification pass's deltas to the obs
// counters (oracle.checks, oracle.violations and a per-checker
// oracle.violations.<checker> breakdown) and closes its span.
func finishVerify(sp *Span, rec *Recorder, vr *VerifyReport, beforeChecks, beforeViol int) {
	checks := vr.Checks - beforeChecks
	viol := vr.Violations[beforeViol:]
	rec.Add("oracle.checks", int64(checks))
	if len(viol) > 0 {
		rec.Add("oracle.violations", int64(len(viol)))
		for _, v := range viol {
			rec.Add("oracle.violations."+v.Checker, 1)
			rec.Event("oracle.violation",
				obs.String("checker", v.Checker),
				obs.String("subject", v.Subject),
				obs.String("detail", v.Detail))
		}
	}
	sp.Set(obs.Int("checks", checks), obs.Int("violations", len(viol)))
	sp.End()
}
